// Command cmpsim runs one benchmark on one CMP configuration under one
// scheduler and prints the resulting performance metrics.
//
// Examples:
//
//	cmpsim -workload mergesort -cores 8 -sched pdf
//	cmpsim -workload hashjoin -cores 16 -sched ws -table 45nm
//	cmpsim -workload mergesort -cores 8 -sched pdf -topology private
//	cmpsim -workload mergesort -cores 16 -topology clustered:4 -sched ws:nearest
//	cmpsim -workload mergesort -cores 8 -topology clustered:4 -sched sb
//	cmpsim -workload mergesort -cores 32 -sched pdf -compare
//
// The -sched flag accepts any scheduler in the registry (run
// `sweep -list` for the live set): the paper's pdf and ws, the fifo
// ablation baseline, the space-bounded sb, and the locality-guided
// stealing variants ws:nearest and ws:oldest.  The -topology flag selects
// how the L2 capacity is organised: shared (one L2 for all cores, the
// paper's machine), private (one slice per core) or clustered:<k> (k cores
// per slice).  The -compare flag runs both PDF and WS (plus the sequential
// baseline) and prints a side-by-side comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cmpsched/internal/cache"
	"cmpsched/internal/cmpsim"
	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/obs"
	"cmpsched/internal/pprofio"
	"cmpsched/internal/sched"
	"cmpsched/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "mergesort", "benchmark: "+strings.Join(workload.Names(), ", "))
		schedName    = flag.String("sched", "pdf", "scheduler: "+strings.Join(sched.Names(), ", "))
		cores        = flag.Int("cores", 8, "number of cores")
		table        = flag.String("table", "default", "configuration table: default (Table 2) or 45nm (Table 3)")
		scale        = flag.Int64("scale", config.DefaultScale, "capacity scale factor (1 = paper-sized caches)")
		l2Hit        = flag.Int64("l2hit", 0, "override L2 hit latency in cycles (0 = table value)")
		memLat       = flag.Int64("memlat", 0, "override main-memory latency in cycles (0 = table value)")
		topology     = flag.String("topology", "shared", "cache topology: shared, private or clustered:<k> (k cores per L2 slice)")
		compare      = flag.Bool("compare", false, "run PDF, WS and the sequential baseline and compare")
		taskWS       = flag.Int64("taskws", 0, "mergesort task working-set bytes (0 = default)")
		traceOut     = flag.String("trace", "", "write a Chrome trace-event JSON of the task lifecycle to this file (load in Perfetto)")
		verbose      = flag.Bool("v", false, "print the metrics snapshot as a sorted key=value table at exit")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	flush, err := pprofio.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	flushProfiles = flush
	defer flushProfiles()

	topo, err := cache.ParseTopology(*topology)
	if err != nil {
		fatal(err)
	}
	cfg, err := lookupConfig(*table, *cores)
	if err != nil {
		fatal(err)
	}
	cfg = cfg.Scaled(*scale).WithTopology(topo)
	if *l2Hit > 0 {
		cfg = cfg.WithL2HitLatency(*l2Hit)
	}
	if *memLat > 0 {
		cfg = cfg.WithMemLatency(*memLat)
	}

	w, err := buildWorkload(*workloadName, *taskWS, cfg)
	if err != nil {
		fatal(err)
	}
	d, _, err := w.Build()
	if err != nil {
		fatal(err)
	}
	stats := d.ComputeStats()
	fmt.Printf("workload %s: %s\n", w.Name(), stats)
	slices := cfg.Topology.Slices(cfg.Cores)
	slice := cfg.Topology.SliceConfig(cfg.L2, cfg.Cores)
	fmt.Printf("config   %s: %d cores, L2 %.1f KB (%d-way, %d-cycle hits), memory %d/%d cycles\n",
		cfg.Name, cfg.Cores, float64(cfg.L2.SizeBytes)/1024, cfg.L2.Assoc, cfg.L2.HitLatency,
		cfg.Memory.LatencyCycles, cfg.Memory.ServiceIntervalCycles)
	fmt.Printf("topology %s: %d L2 slice(s) of %.1f KB (%d-cycle hits)\n",
		cfg.Topology, slices, float64(slice.SizeBytes)/1024, slice.HitLatency)

	opts := cmpsim.DefaultOptions()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		opts.Tracer = tracer
	}
	var reg *obs.Registry
	if *verbose {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}

	if *compare {
		if tracer != nil {
			fatal(fmt.Errorf("-trace records a single run; it cannot be combined with -compare"))
		}
		runCompare(d, cfg, reg)
		printMetrics(reg)
		return
	}

	s, err := sched.New(*schedName)
	if err != nil {
		fatal(err)
	}
	res, err := cmpsim.RunWithOptions(d, s, cfg, opts)
	if err != nil {
		fatal(err)
	}
	printResult(res)
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer, d, cfg.Cores); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cmpsim: wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
	printMetrics(reg)
}

// writeTrace exports the recorded lifecycle events as Chrome trace-event
// JSON, naming each task row after its DAG task.
func writeTrace(path string, tr *obs.Tracer, d *dag.DAG, cores int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cfg := obs.ChromeTraceConfig{
		Cores:    cores,
		TaskName: func(task int32) string { return d.Task(dag.TaskID(task)).Name },
	}
	if err := tr.WriteChromeTrace(f, cfg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printMetrics renders the -v snapshot; a nil registry prints nothing.
func printMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Println("\nmetrics:")
	if err := reg.WriteTable(os.Stdout); err != nil {
		fatal(err)
	}
}

func lookupConfig(table string, cores int) (config.CMP, error) {
	switch table {
	case "default":
		return config.Default(cores)
	case "45nm":
		return config.SingleTech45(cores)
	default:
		return config.CMP{}, fmt.Errorf("unknown table %q (want default or 45nm)", table)
	}
}

func buildWorkload(name string, taskWS int64, cfg config.CMP) (workload.Workload, error) {
	switch name {
	case "mergesort":
		if taskWS > 0 {
			return workload.NewMergesort(workload.MergesortConfig{TaskWorkingSetBytes: taskWS}), nil
		}
	case "hashjoin":
		// Sub-partitions are sized to the configuration's L2, as a
		// database system would.
		return workload.NewHashJoin(workload.HashJoinConfigForL2(cfg.L2.SizeBytes)), nil
	}
	return workload.New(name)
}

func runCompare(d *dag.DAG, cfg config.CMP, reg *obs.Registry) {
	opts := cmpsim.DefaultOptions()
	opts.Metrics = reg
	seq, err := cmpsim.RunSequentialWithOptions(d, cfg, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-6s %14s %10s %12s %12s %10s\n", "sched", "cycles", "speedup", "L2miss/Ki", "mem util", "steals")
	fmt.Printf("%-6s %14d %10.2f %12.3f %12.1f%% %10s\n", "seq", seq.Cycles, 1.0, seq.L2MissesPerKiloInstr(), seq.MemUtilization*100, "-")
	for _, name := range []string{"pdf", "ws"} {
		s, _ := sched.New(name)
		res, err := cmpsim.RunWithOptions(d, s, cfg, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %14d %10.2f %12.3f %12.1f%% %10d\n",
			name, res.Cycles, res.Speedup(seq), res.L2MissesPerKiloInstr(), res.MemUtilization*100, res.SchedMetrics["steals"])
	}
}

func printResult(res *cmpsim.Result) {
	fmt.Printf("\nscheduler            %s\n", res.Scheduler)
	fmt.Printf("execution time       %d cycles\n", res.Cycles)
	fmt.Printf("instructions         %d\n", res.Instructions)
	fmt.Printf("memory references    %d\n", res.Refs)
	fmt.Printf("L1 miss rate         %.2f%%\n", res.L1.MissRate()*100)
	fmt.Printf("L2 misses            %d (%.3f per 1000 instructions)\n", res.L2.Misses, res.L2MissesPerKiloInstr())
	if len(res.L2Slices) > 1 {
		for i, s := range res.L2Slices {
			fmt.Printf("L2 slice %-2d          %d accesses, %d misses (%.2f%% miss rate), %d queue cycles off-chip\n",
				i, s.Accesses, s.Misses, s.MissRate()*100, res.MemPorts[i].QueueCycles)
		}
	}
	fmt.Printf("off-chip transfers   %d (%d fetches, %d write-backs)\n", res.Mem.Transfers(), res.Mem.Fetches, res.Mem.Writebacks)
	fmt.Printf("memory utilization   %.1f%%\n", res.MemUtilization*100)
	fmt.Printf("core utilization     %.1f%%\n", res.AvgCoreUtilization()*100)
	fmt.Printf("tasks executed       %d\n", res.TasksExecuted)
	for k, v := range res.SchedMetrics {
		fmt.Printf("sched metric         %s=%d\n", k, v)
	}
}

// flushProfiles is pprofio.Start's idempotent flush; fatal must run it
// before os.Exit (which skips defers) or an error exit — e.g. a MaxCycles
// abort, exactly the kind of run a user profiles — would leave a
// truncated, unparseable profile.
var flushProfiles = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmpsim:", err)
	flushProfiles()
	os.Exit(1)
}
