// Command wsprofile runs the one-pass LruTree working-set profiler over a
// benchmark's sequential trace, prints the working sets of its task groups
// and, given a target configuration, the automatic task-coarsening
// recommendation (§6 of the paper).
//
// Examples:
//
//	wsprofile -workload mergesort
//	wsprofile -workload mergesort -cores 16 -coarsen
//	wsprofile -workload hashjoin -depth 2
package main

import (
	"flag"
	"fmt"
	"os"

	"cmpsched/internal/coarsen"
	"cmpsched/internal/config"
	"cmpsched/internal/profile"
	"cmpsched/internal/stats"
	"cmpsched/internal/taskgroup"
	"cmpsched/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "mergesort", "benchmark to profile")
		depth        = flag.Int("depth", 3, "task-group tree depth to print")
		cores        = flag.Int("cores", 8, "target core count for coarsening")
		scale        = flag.Int64("scale", config.DefaultScale, "capacity scale factor")
		doCoarsen    = flag.Bool("coarsen", false, "print the automatic task-coarsening recommendation")
		taskWS       = flag.Int64("taskws", 0, "mergesort task working-set bytes; profile-based coarsening starts from a fine-grained program, e.g. 2048")
	)
	flag.Parse()

	var w workload.Workload
	var err error
	if *workloadName == "mergesort" && *taskWS > 0 {
		w = workload.NewMergesort(workload.MergesortConfig{TaskWorkingSetBytes: *taskWS})
	} else {
		w, err = workload.New(*workloadName)
		if err != nil {
			fatal(err)
		}
	}
	d, tree, err := w.Build()
	if err != nil {
		fatal(err)
	}
	if tree == nil {
		fatal(fmt.Errorf("workload %s has no task-group tree", *workloadName))
	}
	cfg, err := config.Default(*cores)
	if err != nil {
		fatal(err)
	}
	cfg = cfg.Scaled(*scale)

	prof, err := profile.NewLruTree(profile.Config{
		LineBytes:  128,
		CacheSizes: profile.DefaultCacheSizes(),
	}).ProfileDAG(d)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: %d tasks, %d task groups, %d references\n",
		w.Name(), d.NumTasks(), tree.NumGroups(), prof.TotalRefs())

	t := stats.NewTable("group", "tasks", "refs", "working set (KB)")
	printGroups(t, prof, tree.Root, 0, *depth)
	fmt.Println(t.String())

	if *doCoarsen {
		sel, err := coarsen.Coarsen(prof, tree, coarsen.Params{CacheSizeBytes: cfg.L2.SizeBytes, Cores: cfg.Cores})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("coarsening for %s (L2 %.0f KB, %d cores): %d groups become sequential tasks\n",
			cfg.Name, float64(cfg.L2.SizeBytes)/1024, cfg.Cores, len(sel.Sequential))
		tt := stats.NewTable("L2 (KB)", "cores", "spawn site", "param threshold")
		for _, e := range sel.Table {
			tt.AddRow(fmt.Sprintf("%.0f", float64(e.L2SizeBytes)/1024), fmt.Sprint(e.Cores), e.Site, fmt.Sprintf("%.0f", e.Threshold))
		}
		fmt.Println(tt.String())
	}
}

func printGroups(t *stats.Table, prof *profile.Profile, n *taskgroup.Node, depth, maxDepth int) {
	if depth > maxDepth {
		return
	}
	g := prof.GroupOf(n)
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	t.AddRow(indent+n.Name, fmt.Sprint(n.NumTasks()), fmt.Sprint(g.Refs),
		fmt.Sprintf("%.1f", float64(g.WorkingSetBytes)/1024))
	for _, c := range n.Children {
		printGroups(t, prof, c, depth+1, maxDepth)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wsprofile:", err)
	os.Exit(1)
}
