// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -experiment all            # every experiment (minutes)
//	experiments -experiment fig2           # one experiment
//	experiments -experiment fig6 -quick    # reduced inputs (seconds)
//
// Available experiments: fig1, fig2, fig3, fig4, fig5, fig6, fig8, grain,
// profiler, topology, irregular, scheduler, all.  Output is printed as
// aligned text tables; EXPERIMENTS.md records a full run next to the
// paper's numbers.  The topology, irregular and scheduler experiments are
// not paper figures: topology evaluates the paper's shared-vs-private
// premise by rerunning PDF vs WS with the L2 organised as shared, clustered
// and per-core private slices; irregular asks the same PDF-vs-WS question
// on the data-dependent graph kernels (BFS, SSSP, PageRank, triangle
// counting) across generator families; and scheduler widens the scheduler
// axis itself, comparing every registered scheduler (PDF, WS, the
// locality-guided ws:nearest and the space-bounded sb) across topologies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cmpsched/internal/config"
	"cmpsched/internal/experiments"
	"cmpsched/internal/pprofio"
)

// runner couples an experiment name with its execution function.
type runner struct {
	name string
	run  func(experiments.Options) (fmt.Stringer, error)
}

func runners() []runner {
	return []runner{
		{"fig1", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Figure1(o) }},
		{"fig2", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Figure2(o) }},
		{"fig3", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Figure3(o) }},
		{"fig4", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Figure4(o) }},
		{"fig5", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Figure5(o) }},
		{"fig6", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Figure6(o) }},
		{"fig8", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Figure8(o) }},
		{"grain", func(o experiments.Options) (fmt.Stringer, error) { return experiments.Granularity(o) }},
		{"profiler", func(o experiments.Options) (fmt.Stringer, error) { return experiments.ProfilerComparison(o) }},
		{"topology", func(o experiments.Options) (fmt.Stringer, error) { return experiments.TopologyComparison(o) }},
		{"irregular", func(o experiments.Options) (fmt.Stringer, error) { return experiments.IrregularComparison(o) }},
		{"scheduler", func(o experiments.Options) (fmt.Stringer, error) { return experiments.SchedulerComparison(o) }},
	}
}

func main() {
	var (
		which      = flag.String("experiment", "all", "experiment to run: fig1, fig2, fig3, fig4, fig5, fig6, fig8, grain, profiler, topology, irregular, scheduler or all")
		quick      = flag.Bool("quick", false, "use reduced inputs (seconds instead of minutes)")
		scale      = flag.Int64("scale", config.DefaultScale, "capacity scale factor relative to the paper's configurations")
		graphRepr  = flag.String("graph-repr", "", "host representation for graph kernels: flat or compressed (empty = flat); the simulated trace is identical either way")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	flush, err := pprofio.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf(1, "%v", err)
	}
	flushProfiles = flush
	defer flushProfiles()

	opts := experiments.Options{Scale: *scale, Quick: *quick, GraphRepr: *graphRepr}
	selected := strings.Split(*which, ",")
	ran := 0
	for _, r := range runners() {
		if !wants(selected, r.name) {
			continue
		}
		start := time.Now()
		res, err := r.run(opts)
		if err != nil {
			fatalf(1, "%s: %v", r.name, err)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s", r.name, time.Since(start).Seconds(), res.String())
		ran++
	}
	if ran == 0 {
		fatalf(2, "unknown experiment %q", *which)
	}
}

// flushProfiles is pprofio.Start's idempotent flush; fatalf must run it
// before os.Exit (which skips defers) so a failed experiment — exactly the
// kind of run worth profiling — still leaves parseable profiles.
var flushProfiles = func() {}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	flushProfiles()
	os.Exit(code)
}

func wants(selected []string, name string) bool {
	for _, s := range selected {
		s = strings.TrimSpace(s)
		if s == "all" || s == name {
			return true
		}
	}
	return false
}
