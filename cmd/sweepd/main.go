// Command sweepd serves the sweep engine over HTTP: clients submit
// declarative design-space grids (or explicit point lists) and stream back
// per-job result rows as the simulations finish.  Concurrent clients whose
// grids overlap share work — each distinct sweep key simulates at most once,
// served by single-flight deduplication and the shared result cache.
//
// Usage:
//
//	sweepd                                        # serve on 127.0.0.1:8357
//	sweepd -addr :8357 -workers 8                 # public, bounded parallelism
//	sweepd -cache-dir /var/cache/sweep            # persistent cross-run cache
//	sweepd -max-queue 256 -retry-after 5s         # admission control tuning
//	sweepd -list                                  # axis values clients may use
//
// Endpoints: POST /sweeps (submit, streams NDJSON or SSE), GET and DELETE
// /sweeps/{id} (status, cancel), GET /metrics, GET /healthz.  On SIGINT or
// SIGTERM the server drains: admission stops (503 + Retry-After, /healthz
// flips to 503 so load balancers rotate it out), the backlog finishes
// streaming, then the process exits cleanly.  -drain-timeout bounds the
// drain; on expiry remaining sweeps are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cmpsched/internal/sched"
	"cmpsched/internal/sweep"
	"cmpsched/internal/sweepsvc"
	"cmpsched/internal/workload"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8357", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent simulations (0 = one per host CPU)")
		maxQueue     = flag.Int("max-queue", 0, "max admitted-but-unstarted jobs across all sweeps (0 = default)")
		maxSweeps    = flag.Int("max-sweeps", 0, "max concurrently active sweeps (0 = default)")
		maxJobs      = flag.Int("max-jobs", 0, "max jobs in one submission (0 = default)")
		retryAfter   = flag.Duration("retry-after", 0, "Retry-After hint on saturated rejections (0 = default)")
		cacheDir     = flag.String("cache-dir", "", "directory for the persistent result cache (empty = in-memory only)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "max time to finish the backlog on SIGTERM before cancelling it")
		list         = flag.Bool("list", false, "print the workloads, schedulers, topologies and tables clients may submit, then exit")
	)
	flag.Parse()

	if *list {
		printAvailable(os.Stdout)
		return
	}

	var cache sweep.Cache
	if *cacheDir != "" {
		dc, err := sweep.NewDiskCache(*cacheDir)
		if err != nil {
			log.Fatalf("sweepd: %v", err)
		}
		dc.SetLogf(log.Printf)
		cache = dc
	}
	svc := sweepsvc.NewService(sweepsvc.Options{
		Workers:         *workers,
		MaxQueue:        *maxQueue,
		MaxSweeps:       *maxSweeps,
		MaxJobsPerSweep: *maxJobs,
		RetryAfter:      *retryAfter,
		Cache:           cache,
	})
	h := sweepsvc.NewHandler(svc)
	h.Logf = log.Printf

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	server := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()
	log.Printf("sweepd: listening on http://%s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Fatalf("sweepd: serve: %v", err)
	}
	stop() // a second signal kills the process immediately

	// Drain before Shutdown: admission flips to 503 at once (new clients are
	// turned away, /healthz rotates us out of load balancers) while admitted
	// sweeps finish streaming; Shutdown then waits for those streams'
	// connections to close.
	log.Printf("sweepd: draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("sweepd: drain expired, remaining sweeps cancelled: %v", err)
	}
	if err := server.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sweepd: shutdown: %v", err)
	}
	log.Printf("sweepd: drained, exiting")
}

// printAvailable lists every axis value a wire request accepts (-list),
// straight from the live registries so late registrations and parameterised
// scheduler spellings show up without server changes.
func printAvailable(w *os.File) {
	fmt.Fprintf(w, "workloads:  %s\n", strings.Join(workload.Names(), ", "))
	fmt.Fprintf(w, "schedulers: %s (plus the %q baseline)\n",
		strings.Join(sched.Names(), ", "), sweep.Sequential)
	fmt.Fprintf(w, "topologies: shared, private, clustered:<cores-per-slice>\n")
	fmt.Fprintf(w, "tables:     %s (Table 2), %s (Table 3)\n", sweep.TableDefault, sweep.Table45nm)
}
