// Command sweepd serves the sweep engine over HTTP: clients submit
// declarative design-space grids (or explicit point lists) and stream back
// per-job result rows as the simulations finish.  Concurrent clients whose
// grids overlap share work — each distinct sweep key simulates at most once,
// served by single-flight deduplication and the shared result cache.
//
// Usage:
//
//	sweepd                                        # serve on 127.0.0.1:8357
//	sweepd -addr :8357 -workers 8                 # public, bounded parallelism
//	sweepd -cache-dir /var/cache/sweep            # persistent cross-run cache
//	sweepd -max-queue 256 -retry-after 5s         # admission control tuning
//	sweepd -job-timeout 5m                        # bound runaway simulations
//	sweepd -fault-inject seed=7,429=0.2,drop=0.1  # chaos-test the data path
//	sweepd -list                                  # axis values clients may use
//
// A fleet of sweepd instances may share one -cache-dir: the cache is wrapped
// in crash-safe per-key leases (sweep.LeasedCache), so overlapping grids
// submitted to different instances simulate each distinct key once
// fleet-wide, and a killed instance's leases are taken over by survivors.
// -fault-inject arms the deterministic HTTP fault harness
// (internal/faultinject) on the data path only — /healthz and /metrics stay
// clean — for rehearsing client retry/failover without real failures.
//
// Endpoints: POST /sweeps (submit, streams NDJSON or SSE), GET and DELETE
// /sweeps/{id} (status, cancel), GET /metrics, GET /healthz.  On SIGINT or
// SIGTERM the server drains: admission stops (503 + Retry-After, /healthz
// flips to 503 so load balancers rotate it out), the backlog finishes
// streaming, then the process exits cleanly.  -drain-timeout bounds the
// drain; on expiry remaining sweeps are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cmpsched/internal/faultinject"
	"cmpsched/internal/obs"
	"cmpsched/internal/sched"
	"cmpsched/internal/sweep"
	"cmpsched/internal/sweepsvc"
	"cmpsched/internal/workload"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8357", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent simulations (0 = one per host CPU)")
		maxQueue     = flag.Int("max-queue", 0, "max admitted-but-unstarted jobs across all sweeps (0 = default)")
		maxSweeps    = flag.Int("max-sweeps", 0, "max concurrently active sweeps (0 = default)")
		maxJobs      = flag.Int("max-jobs", 0, "max jobs in one submission (0 = default)")
		retryAfter   = flag.Duration("retry-after", 0, "Retry-After hint on saturated rejections (0 = default)")
		cacheDir     = flag.String("cache-dir", "", "directory for the persistent result cache (empty = in-memory only)")
		leaseTTL     = flag.Duration("lease-ttl", 10*time.Second, "staleness bound on shared-cache flight leases: a crashed instance's lease is taken over after this long without a heartbeat")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "per-job simulation wall-clock bound; an exceeding job fails as one row instead of wedging a runner (0 = unbounded)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "limit on reading a request's headers and body (result streams are unbounded)")
		faultSpec    = flag.String("fault-inject", "", "arm the deterministic HTTP fault harness on the data path, e.g. seed=7,429=0.2,503=0.1,drop=0.1,latency=10ms (dev/chaos use)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "max time to finish the backlog on SIGTERM before cancelling it")
		list         = flag.Bool("list", false, "print the workloads, schedulers, topologies and tables clients may submit, then exit")
	)
	flag.Parse()

	if *list {
		printAvailable(os.Stdout)
		return
	}

	faults, err := faultinject.ParseHTTPFaults(*faultSpec)
	if err != nil {
		log.Fatalf("sweepd: bad -fault-inject: %v", err)
	}

	// One shared registry so the service, engine and lease metrics all land
	// on /metrics.
	reg := obs.NewRegistry()
	var cache sweep.Cache
	if *cacheDir != "" {
		dc, err := sweep.NewDiskCacheWith(*cacheDir, sweep.DiskCacheOptions{Logf: log.Printf})
		if err != nil {
			log.Fatalf("sweepd: %v", err)
		}
		// Leases make the cache directory safely shareable with other
		// sweepd instances (and CLI runs): each distinct key simulates once
		// fleet-wide, crashed holders are fenced and taken over.
		cache = sweep.NewLeasedCache(dc, sweep.LeaseOptions{
			TTL:     *leaseTTL,
			Metrics: reg,
			Logf:    log.Printf,
		})
	}
	svc := sweepsvc.NewService(sweepsvc.Options{
		Workers:         *workers,
		MaxQueue:        *maxQueue,
		MaxSweeps:       *maxSweeps,
		MaxJobsPerSweep: *maxJobs,
		RetryAfter:      *retryAfter,
		Cache:           cache,
		Metrics:         reg,
		JobTimeout:      *jobTimeout,
	})
	h := sweepsvc.NewHandler(svc)
	h.Logf = log.Printf

	var handler http.Handler = h
	if faults.Enabled() {
		faults.Logf = log.Printf
		handler = faults.Wrap(handler)
		log.Printf("sweepd: fault injection armed: %s", *faultSpec)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	server := &http.Server{Handler: handler, ReadTimeout: *reqTimeout}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()
	log.Printf("sweepd: listening on http://%s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Fatalf("sweepd: serve: %v", err)
	}
	stop() // a second signal kills the process immediately

	// Drain before Shutdown: admission flips to 503 at once (new clients are
	// turned away, /healthz rotates us out of load balancers) while admitted
	// sweeps finish streaming; Shutdown then waits for those streams'
	// connections to close.
	log.Printf("sweepd: draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("sweepd: drain expired, remaining sweeps cancelled: %v", err)
	}
	if err := server.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sweepd: shutdown: %v", err)
	}
	log.Printf("sweepd: drained, exiting")
}

// printAvailable lists every axis value a wire request accepts (-list),
// straight from the live registries so late registrations and parameterised
// scheduler spellings show up without server changes.
func printAvailable(w *os.File) {
	fmt.Fprintf(w, "workloads:  %s\n", strings.Join(workload.Names(), ", "))
	fmt.Fprintf(w, "schedulers: %s (plus the %q baseline)\n",
		strings.Join(sched.Names(), ", "), sweep.Sequential)
	fmt.Fprintf(w, "topologies: shared, private, clustered:<cores-per-slice>\n")
	fmt.Fprintf(w, "tables:     %s (Table 2), %s (Table 3)\n", sweep.TableDefault, sweep.Table45nm)
}
