package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cmpsched
cpu: AMD EPYC 7B13
BenchmarkSimulateMergesortPDF  	      30	  37315743 ns/op	  136560 B/op	    2628 allocs/op
BenchmarkSimulateBFSUniformPDF 	      57	  20880773 ns/op	        86.43 L2-MPKI	   26229 B/op	     129 allocs/op
PASS
ok  	cmpsched	12.3s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || report.Pkg != "cmpsched" || report.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header = %+v", report)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(report.Benchmarks))
	}
	ms := report.Benchmarks[0]
	if ms.Name != "BenchmarkSimulateMergesortPDF" || ms.Iterations != 30 {
		t.Fatalf("benchmark 0 = %+v", ms)
	}
	if ms.Metrics["ns/op"] != 37315743 || ms.Metrics["allocs/op"] != 2628 {
		t.Fatalf("metrics 0 = %+v", ms.Metrics)
	}
	bfs := report.Benchmarks[1]
	if bfs.Metrics["L2-MPKI"] != 86.43 {
		t.Fatalf("custom metric not kept: %+v", bfs.Metrics)
	}
	if !strings.Contains(bfs.Raw, "20880773 ns/op") {
		t.Fatalf("raw line not preserved: %q", bfs.Raw)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnlyName",
		"BenchmarkNoIters abc 1 ns/op",
		"BenchmarkOddFields 10 123 ns/op extra",
		"BenchmarkBadValue 10 abc ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
