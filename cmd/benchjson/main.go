// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report, so benchmark runs can be archived and diffed across commits
// (the repository's perf trajectory: `make bench` writes
// BENCH_simulator.json, and CI attaches it to every build).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSimulate -benchmem . | benchjson -o BENCH_simulator.json
//
// Every metric on a benchmark line is kept, including custom b.ReportMetric
// units such as the simulator's L2-MPKI, next to ns/op, B/op and allocs/op.
// The original benchmark lines are preserved verbatim in each entry's "raw"
// field, so a benchstat-ready file can be reconstructed with jq:
//
//	jq -r '.benchmarks[].raw' BENCH_simulator.json | benchstat old.txt /dev/stdin
//
// The parsing (and the regression policy of the companion gate, benchgate)
// lives in internal/benchfmt.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cmpsched/internal/benchfmt"
)

func main() {
	var (
		in    = flag.String("i", "", "input file with `go test -bench` output (empty = stdin)")
		out   = flag.String("o", "", "output JSON file (empty = stdout)")
		notes = flag.String("notes", "", "free-form provenance note stored in the report (machine, baseline rationale)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	report, err := benchfmt.Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	report.Notes = *notes

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
