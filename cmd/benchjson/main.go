// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report, so benchmark runs can be archived and diffed across commits
// (the repository's perf trajectory: `make bench` writes
// BENCH_simulator.json, and CI attaches it to every build).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSimulate -benchmem . | benchjson -o BENCH_simulator.json
//
// Every metric on a benchmark line is kept, including custom b.ReportMetric
// units such as the simulator's L2-MPKI, next to ns/op, B/op and allocs/op.
// The original benchmark lines are preserved verbatim in each entry's "raw"
// field, so a benchstat-ready file can be reconstructed with jq:
//
//	jq -r '.benchmarks[].raw' BENCH_simulator.json | benchstat old.txt /dev/stdin
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including any -cpu suffix (e.g.
	// "BenchmarkSimulateMergesortPDF-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "<value> <unit>" pair on the
	// line: ns/op, B/op, allocs/op and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the original line, for benchstat reconstruction.
	Raw string `json:"raw"`
}

// Report is the emitted document.
type Report struct {
	// Timestamp is the UTC generation time (RFC 3339).
	Timestamp string `json:"timestamp"`
	// Goos/Goarch/CPU/Pkg echo the `go test` header lines when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		in  = flag.String("i", "", "input file with `go test -bench` output (empty = stdin)")
		out = flag.String("o", "", "output JSON file (empty = stdout)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	report, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// parse reads `go test -bench` output, collecting header fields and every
// benchmark result line.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Timestamp: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// parseLine parses one result line: name, iteration count, then
// "<value> <unit>" pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
		Raw:        line,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
