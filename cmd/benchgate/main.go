// Command benchgate compares a candidate benchmark report against a baseline
// and fails (exit 1) on regressions, making the benchmark harness a CI gate
// rather than a passive archive.
//
// Usage:
//
//	make bench-gate
//	benchgate -baseline BENCH_simulator.json -candidate new.json
//	benchgate -baseline BENCH_simulator.json -candidate new.json -time-tolerance 0.25
//
// Both inputs are benchjson reports (internal/benchfmt).  The policy: a
// benchmark regresses when its ns/op grows more than the time tolerance
// (default +10%), when its B/op grows more than the bytes tolerance (default
// +10% — byte totals track runtime internals like map growth, so they get a
// band, but a tight one because they are not noisy), when its allocs/op
// increases AT ALL (allocation counts are deterministic, so any increase is a
// real regression — this is the bar that protects the simulator's zero-alloc
// steady state), or when it disappears from the candidate run.  New
// candidate-only benchmarks are reported but do not fail the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cmpsched/internal/benchfmt"
)

func main() {
	var (
		baselinePath   = flag.String("baseline", "BENCH_simulator.json", "baseline benchjson report")
		candidatePath  = flag.String("candidate", "", "candidate benchjson report (required)")
		timeTolerance  = flag.Float64("time-tolerance", 0.10, "allowed fractional ns/op increase (0.10 = +10%)")
		bytesTolerance = flag.Float64("bytes-tolerance", 0.10, "allowed fractional B/op increase (0 disables the check)")
	)
	flag.Parse()
	if *candidatePath == "" {
		fatal(fmt.Errorf("-candidate is required"))
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	candidate, err := load(*candidatePath)
	if err != nil {
		fatal(err)
	}

	tol := benchfmt.Tolerance{Time: *timeTolerance, Bytes: *bytesTolerance}
	findings, regressions := benchfmt.Compare(baseline, candidate, tol)
	for _, f := range findings {
		status := "ok  "
		if f.Regression {
			status = "FAIL"
		}
		fmt.Printf("%s %-45s %s\n", status, f.Name, f.Detail)
	}
	policy := fmt.Sprintf("time +%.0f%%, bytes +%.0f%%, allocs +0", *timeTolerance*100, *bytesTolerance*100)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d benchmarks regressed beyond tolerance (%s)\n",
			regressions, len(baseline.Benchmarks), policy)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within tolerance (%s)\n", len(baseline.Benchmarks), policy)
}

// load reads one benchjson report.
func load(path string) (*benchfmt.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchfmt.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
