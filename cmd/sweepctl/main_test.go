package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cmpsched/internal/config"
	"cmpsched/internal/dag"
	"cmpsched/internal/faultinject"
	"cmpsched/internal/sweep"
	"cmpsched/internal/sweepsvc"
	"cmpsched/internal/workload"
)

// testCfg returns a small simulatable configuration.
func testCfg(t *testing.T) config.CMP {
	t.Helper()
	for _, c := range config.Defaults() {
		if c.Cores == 2 {
			return c.Scaled(config.DefaultScale * 16)
		}
	}
	t.Fatal("no 2-core default configuration")
	return config.CMP{}
}

// newTestServer starts a real sweep service whose expander maps each
// submitted point to a milliseconds-scale job (deterministic per point, so
// every server produces identical rows), optionally behind the HTTP fault
// injector.  failPoint, when non-empty, names a workload whose build fails —
// the terminal-job-error case.
func newTestServer(t *testing.T, faults faultinject.HTTPFaults, failPoint string) *httptest.Server {
	t.Helper()
	cfg := testCfg(t)
	svc := sweepsvc.NewService(sweepsvc.Options{Workers: 2})
	h := sweepsvc.NewHandler(svc)
	h.Expand = func(r *sweepsvc.Request) ([]sweep.Job, error) {
		jobs := make([]sweep.Job, len(r.Points))
		for i, p := range r.Points {
			p := p
			build := func() (*dag.DAG, error) {
				if p.Workload == failPoint {
					return nil, fmt.Errorf("injected build failure for %s", p.Workload)
				}
				d, _, err := workload.NewMergesort(workload.MergesortConfig{
					Elements: 1 << 10, TaskWorkingSetBytes: 1 << 10}).Build()
				return d, err
			}
			jobs[i] = sweep.NewJob(p.Workload, fmt.Sprintf("%+v", p), p.Scheduler, cfg, build)
		}
		return jobs, nil
	}
	var handler http.Handler = h
	if faults.Enabled() {
		handler = faults.Wrap(handler)
	}
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv
}

// testPoints returns n distinct points (each is its own sweep.Key).  The
// workload names must pass the server's registry validation, so they come
// from the real registry; the test expander builds the same tiny DAG for all
// of them regardless.
func testPoints(t *testing.T, n int) []sweepsvc.Point {
	t.Helper()
	names := workload.Names()
	schedulers := []string{"pdf", "ws"}
	if n > len(names)*len(schedulers) {
		t.Fatalf("testPoints: %d exceeds the %d distinct combinations", n, len(names)*len(schedulers))
	}
	pts := make([]sweepsvc.Point, n)
	for i := range pts {
		pts[i] = sweepsvc.Point{
			Workload:  names[i%len(names)],
			Scheduler: schedulers[i/len(names)],
			Cores:     2,
		}
	}
	return pts
}

// newTestClient builds a client with test-scale retry pacing.
func newTestClient(endpoints ...string) *client {
	return &client{
		endpoints: endpoints,
		retries:   6,
		backoff:   time.Millisecond,
		http:      &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 10 * time.Second}},
	}
}

// normalize strips the legitimately-varying fields so rows from different
// servers/attempts compare equal.
func normalize(rs []sweep.Result) []sweep.Result {
	out := make([]sweep.Result, len(rs))
	for i, r := range rs {
		r.Cached = false
		r.Elapsed = 0
		out[i] = r
	}
	return out
}

// cleanRun sweeps the points through one fault-free server as the reference.
func cleanRun(t *testing.T, points []sweepsvc.Point) []sweep.Result {
	t.Helper()
	srv := newTestServer(t, faultinject.HTTPFaults{}, "")
	results := make([]sweep.Result, len(points))
	cl := newTestClient(srv.URL)
	failures, err := cl.run(points, results)
	if err != nil || len(failures) != 0 {
		t.Fatalf("clean run: failures=%v err=%v", failures, err)
	}
	return normalize(results)
}

// TestClientRidesOutInjectedFaults: a single endpoint injecting 429s, 503s
// and mid-stream drops must still deliver the complete, correct row set —
// retries resubmit only the unreceived points.
func TestClientRidesOutInjectedFaults(t *testing.T) {
	points := testPoints(t, 10)
	want := cleanRun(t, points)

	srv := newTestServer(t, faultinject.HTTPFaults{
		Seed:           11,
		Rate429:        0.2,
		Rate503:        0.2,
		RateDrop:       0.2,
		RetryAfter:     time.Second, // rounded up from ms by the header; still honored
		DropAfterBytes: 300,
	}, "")
	results := make([]sweep.Result, len(points))
	cl := newTestClient(srv.URL)
	failures, err := cl.run(points, results)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	if got := normalize(results); !reflect.DeepEqual(got, want) {
		t.Fatal("faulted run's merged rows differ from the clean run")
	}
}

// TestClientFailsOverToSurvivor: with one endpoint permanently down, its
// shard must re-shard onto the survivor and the merged output must match a
// clean single-server run exactly.
func TestClientFailsOverToSurvivor(t *testing.T) {
	points := testPoints(t, 8)
	want := cleanRun(t, points)

	alive := newTestServer(t, faultinject.HTTPFaults{}, "")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(dead.Close)

	results := make([]sweep.Result, len(points))
	cl := newTestClient(dead.URL, alive.URL)
	cl.retries = 1
	failures, err := cl.run(points, results)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	if got := normalize(results); !reflect.DeepEqual(got, want) {
		t.Fatal("failover run's merged rows differ from the clean run")
	}
}

// TestClientAllEndpointsDead: when every endpoint is gone the client reports
// the outstanding points instead of hanging.
func TestClientAllEndpointsDead(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(dead.Close)

	points := testPoints(t, 3)
	results := make([]sweep.Result, len(points))
	cl := newTestClient(dead.URL)
	cl.retries = 1
	_, err := cl.run(points, results)
	if err == nil || !strings.Contains(err.Error(), "dead") {
		t.Fatalf("want an all-endpoints-dead error, got %v", err)
	}
}

// TestClientJobErrorIsTerminal: a job that fails in simulation is reported
// once and never resubmitted (it would fail identically anywhere).
func TestClientJobErrorIsTerminal(t *testing.T) {
	points := testPoints(t, 4)
	srv := newTestServer(t, faultinject.HTTPFaults{}, points[1].Workload)

	results := make([]sweep.Result, len(points))
	cl := newTestClient(srv.URL)
	failures, err := cl.run(points, results)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], points[1].Workload) {
		t.Fatalf("failures = %v, want exactly the %s build failure", failures, points[1].Workload)
	}
	for i, r := range results {
		if i == 1 {
			if r.Sim != nil {
				t.Fatal("failed point has a row")
			}
			continue
		}
		if r.Sim == nil {
			t.Fatalf("point %d missing its row", i)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("parseRetryAfter(3) = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("parseRetryAfter(empty) = %v", d)
	}
	if d := parseRetryAfter("-1"); d != 0 {
		t.Fatalf("parseRetryAfter(-1) = %v", d)
	}
}
