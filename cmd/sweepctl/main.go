// Command sweepctl is the fan-out client for sweepd: it submits design-space
// grids over HTTP, streams result rows as simulations finish, and writes
// them with the same exporters cmd/sweep uses — so a grid swept through a
// server is byte-comparable with one swept locally.
//
// Usage:
//
//	sweepctl -workloads mergesort,hashjoin -quick              # one server
//	sweepctl -server http://a:8357,http://b:8357 -quick ...    # fan out
//	sweepctl -workloads lu -seq -format json -o lu.json
//	sweepctl -list                                             # axis values
//
// The grid is always expanded to explicit points locally and the points are
// sharded round-robin across the endpoints; returned rows are merged back
// into the canonical expansion order — the same deterministic Key order a
// single submission (or cmd/sweep itself) would produce, regardless of which
// server finished first or how many times a shard had to be resubmitted.
// Sharding is key-preserving: every point carries the same sweep.Key it
// would in the full grid, so the servers' caches stay shareable.
//
// The client is fault tolerant. A 429 waits out the server's Retry-After; a
// 5xx, timeout, connection error or mid-stream disconnect retries with
// exponential backoff and deterministic jitter, resubmitting only the points
// whose rows have not been received; an endpoint that exhausts its -retries
// budget is declared dead and its remaining points are re-sharded across the
// surviving endpoints. Only job-level simulation errors are terminal — the
// job would fail identically anywhere — and only when every endpoint is dead
// with points still outstanding does sweepctl give up. None of this changes
// the output: rows land by global point index, so the merged CSV/JSON is
// byte-identical to a fault-free single-server run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"cmpsched/internal/config"
	"cmpsched/internal/prng"
	"cmpsched/internal/sched"
	"cmpsched/internal/sweep"
	"cmpsched/internal/sweepsvc"
	"cmpsched/internal/workload"
)

func main() {
	var (
		servers    = flag.String("server", "http://127.0.0.1:8357", "comma-separated sweepd base URLs; more than one shards the grid")
		workloads  = flag.String("workloads", "mergesort,hashjoin,lu", "comma-separated workloads: "+strings.Join(workload.Names(), ", "))
		schedulers = flag.String("schedulers", "pdf,ws", "comma-separated schedulers: "+strings.Join(sched.Names(), ", "))
		list       = flag.Bool("list", false, "print the available workloads, schedulers, topologies and configuration tables, then exit")
		tables     = flag.String("tables", sweep.TableDefault, "configuration tables: default (Table 2), 45nm (Table 3)")
		topology   = flag.String("topology", "shared", "comma-separated cache topologies: shared, private, clustered:<k>")
		cores      = flag.String("cores", "", "comma-separated core counts (empty = all the tables define)")
		scale      = flag.Int64("scale", config.DefaultScale, "capacity scale factor relative to the paper's configurations")
		quick      = flag.Bool("quick", false, "use reduced inputs (seconds instead of minutes)")
		seq        = flag.Bool("seq", false, "also run the sequential baseline per point")
		format     = flag.String("format", "csv", "output format: csv or json")
		out        = flag.String("o", "", "output file (empty = stdout)")
		verbose    = flag.Bool("v", false, "log each received row to stderr")
		retries    = flag.Int("retries", 4, "per-endpoint retry budget before the endpoint is declared dead and its points re-shard")
		backoff    = flag.Duration("backoff", 250*time.Millisecond, "base of the exponential retry backoff (doubled per strike, plus deterministic jitter)")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-attempt limit on connecting and receiving response headers (the result stream itself is unbounded)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("workloads:  %s\n", strings.Join(workload.Names(), ", "))
		fmt.Printf("schedulers: %s (plus the %q baseline via -seq)\n",
			strings.Join(sched.Names(), ", "), sweep.Sequential)
		fmt.Printf("topologies: shared, private, clustered:<cores-per-slice>\n")
		fmt.Printf("tables:     %s (Table 2), %s (Table 3)\n", sweep.TableDefault, sweep.Table45nm)
		return
	}
	if *format != "csv" && *format != "json" {
		fatalf("unknown format %q (want csv or json)", *format)
	}
	endpoints := splitList(*servers)
	if len(endpoints) == 0 {
		fatalf("no -server endpoints")
	}

	req := &sweepsvc.Request{
		Workloads:  splitList(*workloads),
		Schedulers: splitList(*schedulers),
		Tables:     splitList(*tables),
		Topologies: splitList(*topology),
		Scale:      *scale,
		Quick:      *quick,
		Sequential: *seq,
	}
	var err error
	if req.Cores, err = parseInts(*cores); err != nil {
		fatalf("bad -cores: %v", err)
	}
	// Validate locally against the same registries the server consults, so
	// typos fail here with the full diagnosis instead of as an HTTP 400.
	points, err := req.ExpandPoints()
	if err != nil {
		fatalf("%v", err)
	}

	cl := &client{
		endpoints: endpoints,
		scale:     req.Scale,
		quick:     req.Quick,
		retries:   *retries,
		backoff:   *backoff,
		verbose:   *verbose,
		http: &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: *reqTimeout,
		}},
	}
	results := make([]sweep.Result, len(points))
	failures, err := cl.run(points, results)

	w := os.Stdout
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			fatalf("%v", cerr)
		}
		defer f.Close()
		w = f
	}
	// The exporters skip unfilled rows, so partial output on failure is
	// still well-formed.
	var werr error
	switch *format {
	case "csv":
		werr = sweep.WriteCSV(w, results)
	case "json":
		werr = sweep.WriteJSON(w, results)
	}
	if werr != nil {
		fatalf("write %s: %v", *format, werr)
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "sweepctl: %s\n", f)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if len(failures) > 0 {
		fatalf("%d of %d jobs failed", len(failures), len(points))
	}
}

// client is the resilient fan-out state: which rows have landed, which jobs
// failed terminally, and the knobs of the retry policy.
type client struct {
	endpoints []string
	scale     int64
	quick     bool
	retries   int
	backoff   time.Duration
	verbose   bool
	http      *http.Client

	mu       sync.Mutex
	resolved []bool
	failures []string
}

// run drives the sweep to completion: shard the outstanding points over the
// live endpoints, stream each shard (with per-endpoint retries), then
// re-shard whatever a dead endpoint left behind across the survivors.  Each
// round either finishes the sweep or loses at least one endpoint, so the
// loop is bounded by the endpoint count.
func (c *client) run(points []sweepsvc.Point, results []sweep.Result) ([]string, error) {
	c.resolved = make([]bool, len(points))
	alive := append([]string(nil), c.endpoints...)
	missing := make([]int, len(points))
	for i := range points {
		missing[i] = i
	}
	for round := 0; len(missing) > 0; round++ {
		if len(alive) == 0 {
			return c.failures, fmt.Errorf("all %d endpoints are dead with %d of %d points outstanding",
				len(c.endpoints), len(missing), len(points))
		}
		if round > 0 {
			fmt.Fprintf(os.Stderr, "sweepctl: re-sharding %d outstanding points across %d surviving endpoints\n",
				len(missing), len(alive))
		}
		shards := make([][]int, len(alive)) // shard -> global point indices
		for i, gi := range missing {
			shards[i%len(alive)] = append(shards[i%len(alive)], gi)
		}
		survived := make([]bool, len(alive))
		var wg sync.WaitGroup
		for s := range alive {
			if len(shards[s]) == 0 {
				survived[s] = true
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				survived[s] = c.sweepShard(alive[s], round, points, shards[s], results)
			}(s)
		}
		wg.Wait()

		var nextAlive []string
		for s, ep := range alive {
			if survived[s] {
				nextAlive = append(nextAlive, ep)
			}
		}
		var nextMissing []int
		for _, gi := range missing {
			if !c.isResolved(gi) {
				nextMissing = append(nextMissing, gi)
			}
		}
		alive, missing = nextAlive, nextMissing
	}
	return c.failures, nil
}

// sweepShard streams one endpoint's shard, resubmitting only the unreceived
// points after every failure, until the shard completes or the endpoint
// exhausts its retry budget.  It reports whether the endpoint survived.
//
// The backoff jitter is drawn from a splitmix64 stream seeded by (endpoint,
// round), so a replayed run backs off identically — failures under the
// fault-injection harness reproduce from their seeds alone.
func (c *client) sweepShard(endpoint string, round int, points []sweepsvc.Point, idxs []int, results []sweep.Result) bool {
	rng := prng.SplitMix64{State: prng.Mix64(hash64(endpoint) ^ uint64(round)<<32)}
	pending := append([]int(nil), idxs...)
	for strikes := 0; ; {
		req := &sweepsvc.Request{Scale: c.scale, Quick: c.quick}
		for _, gi := range pending {
			req.Points = append(req.Points, points[gi])
		}
		retryAfter, err := c.streamOnce(endpoint, req, pending, results)

		var left []int
		for _, gi := range pending {
			if !c.isResolved(gi) {
				left = append(left, gi)
			}
		}
		pending = left
		if len(pending) == 0 {
			return true
		}
		if err == nil {
			// A cleanly terminated stream that still left rows unaccounted
			// for is a server bug, but retrying is harmless: the points are
			// idempotent.
			err = fmt.Errorf("stream ended with %d rows missing", len(pending))
		}

		strikes++
		if strikes > c.retries {
			fmt.Fprintf(os.Stderr, "sweepctl: %s: dead after %d attempts (%v); abandoning the endpoint\n",
				endpoint, strikes, err)
			return false
		}
		var sleep time.Duration
		if retryAfter > 0 {
			// The server asked for space (429): honor its pacing verbatim.
			sleep = retryAfter
		} else {
			base := c.backoff << (strikes - 1)
			if base <= 0 {
				base = time.Millisecond
			}
			sleep = base + time.Duration(rng.Next()%uint64(base))
		}
		fmt.Fprintf(os.Stderr, "sweepctl: %s: attempt %d failed (%v); resubmitting %d points in %v\n",
			endpoint, strikes, err, len(pending), sleep)
		time.Sleep(sleep)
	}
}

// streamOnce submits one shard and decodes its NDJSON event stream. Rows and
// terminal job failures resolve their global point index; a non-nil error
// means the attempt should be retried (with retryAfter as the server-imposed
// pause when it sent one).
func (c *client) streamOnce(endpoint string, req *sweepsvc.Request, pending []int, results []sweep.Result) (retryAfter time.Duration, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Post(strings.TrimSuffix(endpoint, "/")+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
				return ra, fmt.Errorf("server saturated (429, retry after %v)", ra)
			}
		}
		return 0, fmt.Errorf("server rejected the sweep (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var done, total int
	start := time.Now()
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev sweepsvc.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return 0, fmt.Errorf("bad event %q: %w", line, err)
		}
		switch ev.Type {
		case sweepsvc.EventAccepted:
			total = ev.Total
			if c.verbose {
				fmt.Fprintf(os.Stderr, "sweepctl: %s: sweep %s accepted, %d jobs\n", endpoint, ev.SweepID, total)
			}
		case sweepsvc.EventResult:
			if ev.Index < 0 || ev.Index >= len(pending) {
				return 0, fmt.Errorf("event index %d outside the submitted shard of %d", ev.Index, len(pending))
			}
			gi := pending[ev.Index]
			done++
			if ev.Err != "" {
				// A simulation error is terminal: the job is deterministic,
				// so it would fail identically on any endpoint or attempt.
				c.resolve(gi, fmt.Sprintf("point %d (%s/%s): %s",
					gi, req.Points[ev.Index].Workload, req.Points[ev.Index].Scheduler, ev.Err))
				continue
			}
			if ev.Result != nil {
				results[gi] = *ev.Result
				c.resolve(gi, "")
				if c.verbose {
					fmt.Fprintf(os.Stderr, "sweepctl: [%d/%d] %s on %s: %d cycles%s\n",
						done, total, ev.Result.Key, ev.Result.Sim.Config.Name, ev.Result.Sim.Cycles, cachedTag(*ev.Result))
				}
			}
		case sweepsvc.EventCancelled:
			return 0, fmt.Errorf("sweep cancelled server-side after %d of %d rows", done, total)
		case sweepsvc.EventDone:
			if c.verbose && ev.Summary != nil {
				fmt.Fprintf(os.Stderr, "sweepctl: %s: done, %d completed, %d failed, %d dedup hits in %.2fs\n",
					endpoint, ev.Summary.Completed, ev.Summary.Failed, ev.Summary.DedupHits, time.Since(start).Seconds())
			}
			return 0, nil
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("stream broke: %w", err)
	}
	return 0, fmt.Errorf("stream ended without a done event")
}

// resolve marks one global point settled — with a row already written into
// results, or with a terminal failure message.
func (c *client) resolve(gi int, failure string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resolved[gi] {
		return
	}
	c.resolved[gi] = true
	if failure != "" {
		c.failures = append(c.failures, failure)
	}
}

// isResolved reports whether a global point has settled.
func (c *client) isResolved(gi int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resolved[gi]
}

// parseRetryAfter decodes a Retry-After header's delay-seconds form (the
// only form sweepd and the fault injector emit).
func parseRetryAfter(s string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// hash64 is FNV-1a, seeding the per-endpoint jitter stream.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func cachedTag(r sweep.Result) string {
	if r.Cached {
		return " (cached)"
	}
	return ""
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweepctl: "+format+"\n", args...)
	os.Exit(1)
}
