// Command sweepctl is the fan-out client for sweepd: it submits design-space
// grids over HTTP, streams result rows as simulations finish, and writes
// them with the same exporters cmd/sweep uses — so a grid swept through a
// server is byte-comparable with one swept locally.
//
// Usage:
//
//	sweepctl -workloads mergesort,hashjoin -quick              # one server
//	sweepctl -server http://a:8357,http://b:8357 -quick ...    # fan out
//	sweepctl -workloads lu -seq -format json -o lu.json
//	sweepctl -list                                             # axis values
//
// With several -server endpoints the grid is expanded to explicit points
// locally, the points are sharded round-robin across the endpoints, and the
// returned rows are merged back into the canonical expansion order — the
// same deterministic Key order a single submission (or cmd/sweep itself)
// would produce, regardless of which server finished first.  Sharding is
// key-preserving: every point carries the same sweep.Key it would in the
// full grid, so the servers' caches stay shareable.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"cmpsched/internal/config"
	"cmpsched/internal/sched"
	"cmpsched/internal/sweep"
	"cmpsched/internal/sweepsvc"
	"cmpsched/internal/workload"
)

func main() {
	var (
		servers    = flag.String("server", "http://127.0.0.1:8357", "comma-separated sweepd base URLs; more than one shards the grid")
		workloads  = flag.String("workloads", "mergesort,hashjoin,lu", "comma-separated workloads: "+strings.Join(workload.Names(), ", "))
		schedulers = flag.String("schedulers", "pdf,ws", "comma-separated schedulers: "+strings.Join(sched.Names(), ", "))
		list       = flag.Bool("list", false, "print the available workloads, schedulers, topologies and configuration tables, then exit")
		tables     = flag.String("tables", sweep.TableDefault, "configuration tables: default (Table 2), 45nm (Table 3)")
		topology   = flag.String("topology", "shared", "comma-separated cache topologies: shared, private, clustered:<k>")
		cores      = flag.String("cores", "", "comma-separated core counts (empty = all the tables define)")
		scale      = flag.Int64("scale", config.DefaultScale, "capacity scale factor relative to the paper's configurations")
		quick      = flag.Bool("quick", false, "use reduced inputs (seconds instead of minutes)")
		seq        = flag.Bool("seq", false, "also run the sequential baseline per point")
		format     = flag.String("format", "csv", "output format: csv or json")
		out        = flag.String("o", "", "output file (empty = stdout)")
		verbose    = flag.Bool("v", false, "log each received row to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Printf("workloads:  %s\n", strings.Join(workload.Names(), ", "))
		fmt.Printf("schedulers: %s (plus the %q baseline via -seq)\n",
			strings.Join(sched.Names(), ", "), sweep.Sequential)
		fmt.Printf("topologies: shared, private, clustered:<cores-per-slice>\n")
		fmt.Printf("tables:     %s (Table 2), %s (Table 3)\n", sweep.TableDefault, sweep.Table45nm)
		return
	}
	if *format != "csv" && *format != "json" {
		fatalf("unknown format %q (want csv or json)", *format)
	}
	endpoints := splitList(*servers)
	if len(endpoints) == 0 {
		fatalf("no -server endpoints")
	}

	req := &sweepsvc.Request{
		Workloads:  splitList(*workloads),
		Schedulers: splitList(*schedulers),
		Tables:     splitList(*tables),
		Topologies: splitList(*topology),
		Scale:      *scale,
		Quick:      *quick,
		Sequential: *seq,
	}
	var err error
	if req.Cores, err = parseInts(*cores); err != nil {
		fatalf("bad -cores: %v", err)
	}
	// Validate locally against the same registries the server consults, so
	// typos fail here with the full diagnosis instead of as an HTTP 400.
	points, err := req.ExpandPoints()
	if err != nil {
		fatalf("%v", err)
	}

	results := make([]sweep.Result, len(points))
	var failures []string
	if len(endpoints) == 1 {
		failures, err = stream(endpoints[0], req, *verbose, func(i int, r sweep.Result) { results[i] = r })
		if err != nil {
			fatalf("%s: %v", endpoints[0], err)
		}
	} else {
		failures, err = fanOut(endpoints, req, points, *verbose, results)
		if err != nil {
			fatalf("%v", err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	// The exporters skip unfilled rows, so partial output on failure is
	// still well-formed.
	switch *format {
	case "csv":
		err = sweep.WriteCSV(w, results)
	case "json":
		err = sweep.WriteJSON(w, results)
	}
	if err != nil {
		fatalf("write %s: %v", *format, err)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "sweepctl: %s\n", f)
		}
		fatalf("%d of %d jobs failed", len(failures), len(points))
	}
}

// fanOut shards the expanded points round-robin across the endpoints,
// submits each shard as an explicit-points request, and scatters the rows
// back into the full grid's slice by global index — the merge is position-,
// not arrival-, ordered, so the output is deterministic.
func fanOut(endpoints []string, req *sweepsvc.Request, points []sweepsvc.Point, verbose bool, results []sweep.Result) ([]string, error) {
	shards := make([][]int, len(endpoints)) // shard -> global point indices
	for i := range points {
		s := i % len(endpoints)
		shards[s] = append(shards[s], i)
	}
	var (
		mu       sync.Mutex
		failures []string
		firstErr error
		wg       sync.WaitGroup
	)
	for s, idxs := range shards {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(endpoint string, idxs []int) {
			defer wg.Done()
			shard := &sweepsvc.Request{Scale: req.Scale, Quick: req.Quick}
			for _, gi := range idxs {
				shard.Points = append(shard.Points, points[gi])
			}
			fails, err := stream(endpoint, shard, verbose, func(i int, r sweep.Result) {
				results[idxs[i]] = r
			})
			mu.Lock()
			defer mu.Unlock()
			failures = append(failures, fails...)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", endpoint, err)
			}
		}(endpoints[s], idxs)
	}
	wg.Wait()
	return failures, firstErr
}

// stream submits one request and decodes the NDJSON event stream, handing
// each completed row to emit with its index within this submission.  Failed
// jobs are collected, not fatal: the rest of the sweep keeps streaming.
func stream(endpoint string, req *sweepsvc.Request, verbose bool, emit func(int, sweep.Result)) (failures []string, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(strings.TrimSuffix(endpoint, "/")+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return nil, fmt.Errorf("server rejected the sweep (%s, retry after %ss): %s",
				resp.Status, ra, strings.TrimSpace(string(msg)))
		}
		return nil, fmt.Errorf("server rejected the sweep (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var done, total int
	start := time.Now()
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev sweepsvc.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return failures, fmt.Errorf("bad event %q: %w", line, err)
		}
		switch ev.Type {
		case sweepsvc.EventAccepted:
			total = ev.Total
			if verbose {
				fmt.Fprintf(os.Stderr, "sweepctl: %s: sweep %s accepted, %d jobs\n", endpoint, ev.SweepID, total)
			}
		case sweepsvc.EventResult:
			done++
			if ev.Err != "" {
				failures = append(failures, fmt.Sprintf("%s: job %d: %s", endpoint, ev.Index, ev.Err))
				continue
			}
			if ev.Result != nil {
				emit(ev.Index, *ev.Result)
				if verbose {
					fmt.Fprintf(os.Stderr, "sweepctl: [%d/%d] %s on %s: %d cycles%s\n",
						done, total, ev.Result.Key, ev.Result.Sim.Config.Name, ev.Result.Sim.Cycles, cachedTag(*ev.Result))
				}
			}
		case sweepsvc.EventCancelled:
			return failures, fmt.Errorf("sweep cancelled server-side after %d of %d rows", done, total)
		case sweepsvc.EventDone:
			if verbose && ev.Summary != nil {
				fmt.Fprintf(os.Stderr, "sweepctl: %s: done, %d completed, %d failed, %d dedup hits in %.2fs\n",
					endpoint, ev.Summary.Completed, ev.Summary.Failed, ev.Summary.DedupHits, time.Since(start).Seconds())
			}
		}
	}
	return failures, sc.Err()
}

func cachedTag(r sweep.Result) string {
	if r.Cached {
		return " (cached)"
	}
	return ""
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweepctl: "+format+"\n", args...)
	os.Exit(1)
}
