GO ?= go

.PHONY: all build test race-sweep vet fmt-check lint bench-quick ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep engine's worker pool is the repository's only concurrent code;
# run it under the race detector (CI runs this step too).
race-sweep:
	$(GO) test -race ./internal/sweep/...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offending files) if any file is not gofmt'd.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: fmt-check vet

# The full benchmark suite at quick scale: one iteration per benchmark so
# the figure benchmarks, the sweep-engine serial/parallel/cached trio and
# the simulator micro-benchmarks all report without taking minutes.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build lint test race-sweep

clean:
	$(GO) clean ./...
