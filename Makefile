GO ?= go
# bash + pipefail so piped recipes (bench) fail when go test fails, not
# just when the final pipeline stage does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: all build test race-sweep doc-check vet fmt-check lint bench bench-gate bench-quick ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent pieces — the sweep engine's worker pool, the scheduler
# registry (Register/New may race against running sweeps), the metrics
# registry's sharded counters, the sweep service's single-flight dedup, the
# cross-process cache leases (heartbeat goroutines vs takeover), the
# fault-injection shims they are tested through, and the graph kernels
# (whose DAG builders sweeps run concurrently) — run under the race
# detector (CI runs this step too).
race-sweep:
	$(GO) test -race ./internal/sweep/... ./internal/sched/... ./internal/obs/... ./internal/sweepsvc/... ./internal/faultinject/... ./internal/graph/...

# 30-second crash hunt on the varint-delta adjacency decoder (the committed
# corpus under internal/graph/testdata/fuzz replays in plain `go test`; this
# target mutates beyond it).  CI runs this step too.
fuzz-decoder:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeAdj$$' -fuzztime 30s ./internal/graph

# The docs gate: the public facade, the scheduler package, the observability
# package, the sweep service and the fault-injection harness must carry a
# package comment and a doc comment on every exported identifier (the rest
# of the repository is kept clean too, but only these gate CI).
doc-check:
	$(GO) run ./cmd/doccheck . ./internal/sched ./internal/obs ./internal/sweepsvc ./internal/faultinject

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offending files) if any file is not gofmt'd.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: fmt-check vet doc-check

# The simulator benchmark suite -> BENCH_simulator.json: ns/op, B/op,
# allocs/op and the shape metrics (L2-MPKI etc.) for every Simulate*
# benchmark, in benchstat-comparable form (each entry keeps its raw line).
# Compare two commits with
#   jq -r '.benchmarks[].raw' old.json > old.txt   (and likewise new)
#   benchstat old.txt new.txt
BENCH ?= BenchmarkSimulate
BENCHTIME ?= 1s
BENCH_NOTES ?=
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -notes '$(BENCH_NOTES)' -o BENCH_simulator.json

# The gating form: rerun the suite into a scratch report and compare it with
# cmd/benchgate against the committed BENCH_simulator.json baseline.  The
# tolerance band: ns/op may grow at most TIME_TOLERANCE (fractional, default
# +10%); B/op at most BYTES_TOLERANCE (byte totals move with runtime
# internals, but deterministically, so the band is tight); allocs/op may not
# grow at all — allocation counts are deterministic, so any increase is a
# real regression.  CI runs this step gating.
TIME_TOLERANCE ?= 0.10
BYTES_TOLERANCE ?= 0.10
BENCH_CANDIDATE ?= /tmp/cmpsched_bench_candidate.json
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCH_CANDIDATE)
	$(GO) run ./cmd/benchgate -baseline BENCH_simulator.json \
		-candidate $(BENCH_CANDIDATE) -time-tolerance $(TIME_TOLERANCE) \
		-bytes-tolerance $(BYTES_TOLERANCE)

# The full benchmark suite at quick scale: one iteration per benchmark so
# the figure benchmarks, the sweep-engine serial/parallel/cached trio and
# the simulator micro-benchmarks all report without taking minutes.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build lint test race-sweep

clean:
	$(GO) clean ./...
