GO ?= go
# bash + pipefail so piped recipes (bench) fail when go test fails, not
# just when the final pipeline stage does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: all build test race-sweep doc-check vet fmt-check lint bench bench-quick ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent pieces — the sweep engine's worker pool and the scheduler
# registry (Register/New may race against running sweeps) — run under the
# race detector (CI runs this step too).
race-sweep:
	$(GO) test -race ./internal/sweep/... ./internal/sched/...

# The docs gate: the public facade and the scheduler package must carry a
# package comment and a doc comment on every exported identifier (the rest
# of the repository is kept clean too, but only these two gate CI).
doc-check:
	$(GO) run ./cmd/doccheck . ./internal/sched

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offending files) if any file is not gofmt'd.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: fmt-check vet doc-check

# The simulator benchmark suite -> BENCH_simulator.json: ns/op, B/op,
# allocs/op and the shape metrics (L2-MPKI etc.) for every Simulate*
# benchmark, in benchstat-comparable form (each entry keeps its raw line).
# CI runs this as a non-gating step so the perf trajectory accumulates per
# commit; compare two commits with
#   jq -r '.benchmarks[].raw' old.json > old.txt   (and likewise new)
#   benchstat old.txt new.txt
BENCH ?= BenchmarkSimulate
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_simulator.json

# The full benchmark suite at quick scale: one iteration per benchmark so
# the figure benchmarks, the sweep-engine serial/parallel/cached trio and
# the simulator micro-benchmarks all report without taking minutes.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build lint test race-sweep

clean:
	$(GO) clean ./...
