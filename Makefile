GO ?= go

.PHONY: all build test vet bench-quick ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full benchmark suite at quick scale: one iteration per benchmark so
# the figure benchmarks, the sweep-engine serial/parallel/cached trio and
# the simulator micro-benchmarks all report without taking minutes.
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build vet test

clean:
	$(GO) clean ./...
