package cmpsched

import (
	"runtime"
	"testing"
	"time"

	"cmpsched/internal/experiments"
	"cmpsched/internal/profile"
	"cmpsched/internal/sched"
	"cmpsched/internal/sweep"
	"cmpsched/internal/workload"

	"cmpsched/internal/cmpsim"
)

// The benchmarks below regenerate each of the paper's tables and figures at
// the quick (test) scale; `cmd/experiments` runs the same harness at full
// scale.  Custom metrics report the headline shape numbers next to the
// timing, e.g. the PDF-over-WS relative speedup for Figure 2.

func quickOpts(cores ...int) experiments.Options {
	return experiments.Options{Quick: true, Cores: cores}
}

func BenchmarkFigure1MergesortMissPicture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WSTotal)/float64(res.PDFTotal), "ws/pdf-misses")
	}
}

func BenchmarkFigure2DefaultConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(quickOpts(1, 8, 32))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RelativeSpeedup("hashjoin", 32), "hashjoin-pdf/ws")
		b.ReportMetric(res.RelativeSpeedup("mergesort", 32), "mergesort-pdf/ws")
	}
}

func BenchmarkFigure3SingleTechnology45nm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(quickOpts(2, 8, 18, 26))
		if err != nil {
			b.Fatal(err)
		}
		best, _ := res.BestCores("hashjoin", "pdf")
		b.ReportMetric(float64(best), "hashjoin-best-cores")
	}
}

func BenchmarkFigure4L2HitTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RelativeSpeedup("hashjoin", 19), "hashjoin-pdf/ws@19cyc")
	}
}

func BenchmarkFigure5MemoryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RelativeSpeedup("hashjoin", 1100), "hashjoin-pdf/ws@1100cyc")
	}
}

func BenchmarkFigure6TaskGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(quickOpts(16))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MissSpread(16, "pdf"), "pdf-miss-spread")
		b.ReportMetric(res.MissSpread(16, "ws"), "ws-miss-spread")
	}
}

func BenchmarkFigure8AutomaticCoarsening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(quickOpts(16, 8))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WorstNormalized(experiments.SchemeActual), "actual-normalized-worst")
	}
}

func BenchmarkGranularityCoarseVsFine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Granularity(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row("mergesort", "pdf").Speedup(), "mergesort-fine/coarse")
	}
}

// Sweep-engine benchmarks: the same quick multi-figure run executed
// serially (workers=1), in parallel (one worker per host CPU) and against a
// warm result cache.  On a multi-core host the parallel run's ns/op
// approaches serial/workers; the cached run measures pure cache overhead —
// together they track the speedup the sweep engine buys in the perf
// trajectory.

func runQuickFigureSet(b *testing.B, opts experiments.Options) {
	b.Helper()
	if _, err := experiments.Figure3(opts); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Figure4(opts); err != nil {
		b.Fatal(err)
	}
}

func sweepBenchOpts(workers int, cache sweep.Cache) experiments.Options {
	return experiments.Options{Quick: true, Cores: []int{2, 8, 18, 26}, Workers: workers, Cache: cache}
}

func BenchmarkSweepQuickFiguresSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runQuickFigureSet(b, sweepBenchOpts(1, nil))
	}
}

func BenchmarkSweepQuickFiguresParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runQuickFigureSet(b, sweepBenchOpts(runtime.NumCPU(), nil))
	}
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
}

func BenchmarkSweepQuickFiguresCached(b *testing.B) {
	cache := sweep.NewMemoryCache()
	opts := sweepBenchOpts(runtime.NumCPU(), cache)
	runQuickFigureSet(b, opts) // warm the cache
	warmHits, warmMisses := cache.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runQuickFigureSet(b, opts)
	}
	hits, misses := cache.Stats()
	hits, misses = hits-warmHits, misses-warmMisses
	b.ReportMetric(float64(hits)/float64(hits+misses), "hit-ratio")
}

// Profiler benchmarks: the §6.1 timing comparison. The two benchmarks run
// the identical annotation work so their ns/op can be compared directly.

func profilerFixture(b *testing.B) (*DAG, *GroupTree, profile.Config) {
	b.Helper()
	ms := workload.NewMergesort(workload.MergesortConfig{Elements: 64 << 10, TaskWorkingSetBytes: 4 << 10})
	d, tree, err := ms.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := profile.Config{LineBytes: 128, CacheSizes: []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10}}
	return d, tree, cfg
}

func BenchmarkProfilerLruTree(b *testing.B) {
	d, tree, cfg := profilerFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := profile.NewLruTree(cfg).ProfileDAG(d)
		if err != nil {
			b.Fatal(err)
		}
		_ = pr.AnnotateTree(tree)
	}
}

func BenchmarkProfilerSetAssoc(b *testing.B) {
	d, tree, cfg := profilerFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.NewSetAssoc(cfg, 16).AnnotateTree(d, tree); err != nil {
			b.Fatal(err)
		}
	}
}

// Simulator micro-benchmarks: one full Mergesort simulation per iteration,
// useful for tracking the simulator's own throughput.

func simFixture(b *testing.B) *DAG {
	b.Helper()
	d, _, err := workload.NewMergesort(workload.MergesortConfig{Elements: 128 << 10, TaskWorkingSetBytes: 8 << 10}).Build()
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkSimulateMergesortPDF(b *testing.B) {
	d := simFixture(b)
	cfg := DefaultConfig(8).Scaled(DefaultScale * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmpsim.Run(d, sched.NewPDF(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateMergesortWS(b *testing.B) {
	d := simFixture(b)
	cfg := DefaultConfig(8).Scaled(DefaultScale * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmpsim.Run(d, sched.NewWS(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Topology benchmarks: the same Mergesort simulation on each cache
// topology.  The access path is the simulator's hot loop, so these track
// both the cost of the topology indirection (shared must stay at parity
// with the pre-topology simulator) and the relative simulation cost of
// sliced machines.  The reported metric is the aggregate L2 MPKI, tying the
// perf trajectory to the machine-model shape.

func benchmarkSimulateTopology(b *testing.B, topo CacheTopology) {
	b.Helper()
	d := simFixture(b)
	cfg := DefaultConfig(8).Scaled(DefaultScale * 8).WithTopology(topo)
	var mpki float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cmpsim.Run(d, sched.NewPDF(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		mpki = res.L2MissesPerKiloInstr()
	}
	b.ReportMetric(mpki, "L2-MPKI")
}

func BenchmarkSimulateMergesortSharedL2(b *testing.B) {
	benchmarkSimulateTopology(b, SharedTopology())
}

func BenchmarkSimulateMergesortClusteredL2(b *testing.B) {
	benchmarkSimulateTopology(b, ClusteredTopology(4))
}

func BenchmarkSimulateMergesortPrivateL2(b *testing.B) {
	benchmarkSimulateTopology(b, PrivateTopology())
}

// Graph-kernel benchmarks: the simulator on irregular, data-dependent
// inputs.  DAG construction (host graph walk + trace emission) is kept out
// of the timed loop, like the regular fixtures; the reported metric is the
// aggregate L2 MPKI so the perf trajectory stays tied to the irregular
// machine-model shape.

func graphFixture(b *testing.B, build func() (*DAG, *GroupTree, error)) *DAG {
	b.Helper()
	d, _, err := build()
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchmarkSimulateGraph(b *testing.B, w Workload, s Scheduler) {
	b.Helper()
	d := graphFixture(b, w.Build)
	cfg := DefaultConfig(8).Scaled(DefaultScale * 8)
	var mpki float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cmpsim.Run(d, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		mpki = res.L2MissesPerKiloInstr()
	}
	b.ReportMetric(mpki, "L2-MPKI")
}

// benchShape is a mid-sized input: large enough that frontiers span many
// tasks, small enough for -benchtime 1x CI runs.
func benchShape(family string) GraphShape {
	return GraphShape{Family: family, Vertices: 1 << 13}
}

func BenchmarkSimulateBFSUniformPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewBFS(BFSConfig{Shape: benchShape("uniform")}), sched.NewPDF())
}

func BenchmarkSimulateBFSUniformWS(b *testing.B) {
	benchmarkSimulateGraph(b, NewBFS(BFSConfig{Shape: benchShape("uniform")}), sched.NewWS())
}

func BenchmarkSimulateBFSRMATPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewBFS(BFSConfig{Shape: benchShape("rmat")}), sched.NewPDF())
}

func BenchmarkSimulateSSSPUniformPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewSSSP(SSSPConfig{Shape: benchShape("uniform")}), sched.NewPDF())
}

func BenchmarkSimulatePageRankRMATPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewPageRank(PageRankConfig{Shape: benchShape("rmat"), Iterations: 4}), sched.NewPDF())
}

func BenchmarkSimulateTrianglesUniformPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewTriangles(TrianglesConfig{Shape: benchShape("uniform")}), sched.NewPDF())
}

func BenchmarkSimulateConnectivityRMATPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewConnectivity(ConnectivityConfig{Shape: benchShape("rmat")}), sched.NewPDF())
}

func BenchmarkSimulateKCoreUniformPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewKCore(KCoreConfig{Shape: benchShape("uniform")}), sched.NewPDF())
}

func BenchmarkSimulateMISRMATWS(b *testing.B) {
	benchmarkSimulateGraph(b, NewMIS(MISConfig{Shape: benchShape("rmat")}), sched.NewWS())
}

func BenchmarkSimulateMatchingUniformPDF(b *testing.B) {
	benchmarkSimulateGraph(b, NewMatching(MatchingConfig{Shape: benchShape("uniform")}), sched.NewPDF())
}

// The flat-vs-compressed pair pins the tentpole property in the benchmark
// report: the timed loop simulates the same connectivity DAG built over each
// representation (equal cycles and L2-MPKI by construction, and the timed
// allocations stay deterministic, which the allocs/op gate requires), while
// the host-side cost of building that DAG — including the varint decode work
// for the compressed walk — is reported as the build-ms metric next to it in
// BENCH_simulator.json.
func benchmarkSimulateConnectivityRepr(b *testing.B, repr string) {
	b.Helper()
	shape := benchShape("rmat")
	shape.Representation = repr
	w := NewConnectivity(ConnectivityConfig{Shape: shape})
	buildStart := time.Now()
	d := graphFixture(b, w.Build)
	buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
	cfg := DefaultConfig(8).Scaled(DefaultScale * 8)
	var mpki float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cmpsim.Run(d, sched.NewPDF(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		mpki = res.L2MissesPerKiloInstr()
	}
	b.ReportMetric(mpki, "L2-MPKI")
	b.ReportMetric(buildMS, "build-ms")
}

func BenchmarkSimulateEndToEndConnectivityFlat(b *testing.B) {
	benchmarkSimulateConnectivityRepr(b, "flat")
}

func BenchmarkSimulateEndToEndConnectivityCompressed(b *testing.B) {
	benchmarkSimulateConnectivityRepr(b, "compressed")
}

func BenchmarkBuildBFSDAG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := NewBFS(BFSConfig{Shape: benchShape("uniform")}).Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIrregularComparisonQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.IrregularComparison(quickOpts(8))
		if err != nil {
			b.Fatal(err)
		}
		// Headline shape number: how much MPKI the private organisation
		// costs PDF on the BFS/uniform point.
		pdfShared := res.Row("bfs", "uniform", 8, "shared", "pdf")
		pdfPrivate := res.Row("bfs", "uniform", 8, "private", "pdf")
		if pdfShared != nil && pdfPrivate != nil && pdfShared.L2MissesPerKiloInstr > 0 {
			b.ReportMetric(pdfPrivate.L2MissesPerKiloInstr/pdfShared.L2MissesPerKiloInstr, "private/shared-MPKI")
		}
	}
}
