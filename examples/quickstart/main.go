// Quickstart: compare the Parallel Depth First and Work Stealing schedulers
// on a parallel Mergesort running on the paper's 8-core default CMP
// configuration (Table 2), scaled down by the repository's default factor.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cmpsched"
)

func main() {
	// Build the benchmark: a parallel Mergesort of 1M 4-byte keys with
	// ~16 KB task working sets (the scaled counterparts of the paper's
	// 32M keys and 512 KB tasks).
	ms := cmpsched.NewMergesort(cmpsched.MergesortConfig{})
	d, _, err := ms.Build()
	if err != nil {
		log.Fatal(err)
	}
	stats := d.ComputeStats()
	fmt.Printf("mergesort DAG: %d tasks, %d dependence edges, %d memory references\n",
		stats.Tasks, stats.Edges, stats.TotalRefs)

	// The 8-core default configuration (Table 2), scaled with the input.
	cfg := cmpsched.DefaultConfig(8).Scaled(cmpsched.DefaultScale)
	fmt.Printf("machine: %d cores, %.0f KB shared L2, %d-cycle memory\n\n",
		cfg.Cores, float64(cfg.L2.SizeBytes)/1024, cfg.Memory.LatencyCycles)

	// Sequential baseline on one core of the same configuration.
	seq, err := cmpsched.RunSequential(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %14s %10s %14s %12s\n", "scheduler", "cycles", "speedup", "L2 misses/Ki", "mem util")
	fmt.Printf("%-10s %14d %10.2f %14.3f %11.1f%%\n", "sequential", seq.Cycles, 1.0,
		seq.L2MissesPerKiloInstr(), seq.MemUtilization*100)

	for _, s := range []cmpsched.Scheduler{cmpsched.NewPDF(), cmpsched.NewWS()} {
		res, err := cmpsched.Run(d, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14d %10.2f %14.3f %11.1f%%\n", s.Name(), res.Cycles,
			res.Speedup(seq), res.L2MissesPerKiloInstr(), res.MemUtilization*100)
	}
	fmt.Println("\nPDF schedules the ready task the sequential program would run next,")
	fmt.Println("so concurrently running tasks share the L2 constructively and miss less.")
}
