// Hash-join design-space exploration (the shape of Figure 3): run the join
// phase of a database hash join across the 45 nm single-technology
// configurations (Table 3), where every added core shrinks the shared L2,
// and find the best design point under each scheduler.
//
// Run with:
//
//	go run ./examples/hashjoin_design_space
package main

import (
	"fmt"
	"log"

	"cmpsched"
)

func main() {
	fmt.Println("hash join on the 45nm single-technology design space (Table 3)")
	fmt.Printf("%-8s %10s %14s %14s %8s %12s\n", "cores", "L2 (KB)", "pdf cycles", "ws cycles", "ws/pdf", "pdf mem util")

	type point struct {
		cores  int
		cycles int64
	}
	best := map[string]point{}

	for _, cores := range []int{1, 2, 4, 8, 12, 16, 20, 24, 26} {
		cfg := cmpsched.SingleTech45Config(cores).Scaled(cmpsched.DefaultScale)
		// The database sizes its cache-resident hash tables to the
		// configuration's L2, as the paper's join code does.
		hjCfg := cmpsched.HashJoinConfigForL2(cfg.L2.SizeBytes)
		hjCfg.PartitionBytes = 16 << 20 // a 16 MB partition pair keeps the sweep quick

		var cycles [2]int64
		var memUtil float64
		for i, mk := range []func() cmpsched.Scheduler{cmpsched.NewPDF, cmpsched.NewWS} {
			d, _, err := cmpsched.NewHashJoin(hjCfg).Build()
			if err != nil {
				log.Fatal(err)
			}
			res, err := cmpsched.Run(d, mk(), cfg)
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = res.Cycles
			if i == 0 {
				memUtil = res.MemUtilization
			}
			name := mk().Name()
			if b, ok := best[name]; !ok || res.Cycles < b.cycles {
				best[name] = point{cores: cores, cycles: res.Cycles}
			}
		}
		fmt.Printf("%-8d %10.0f %14d %14d %8.2f %11.1f%%\n",
			cores, float64(cfg.L2.SizeBytes)/1024, cycles[0], cycles[1],
			float64(cycles[1])/float64(cycles[0]), memUtil*100)
	}

	fmt.Printf("\nbest design point: PDF %d cores, WS %d cores\n", best["pdf"].cores, best["ws"].cores)
	fmt.Println("PDF keeps its advantage as cores replace cache, giving the designer more")
	fmt.Println("freedom to trade L2 capacity for cores (the paper's §5.2 argument).")
}
