// Graph irregularity: drive the sweep engine over the irregular graph
// kernels (BFS, SSSP, PageRank, triangle counting) the way cmd/sweep does —
// same workload sizing, same content-addressed jobs — contrasting a shared
// L2 against per-core private slices of the same total capacity.
//
// The graph kernels are the data-dependent counterpart of the paper's
// regular benchmarks: which cache lines a task touches is decided by the
// generated adjacency structure.  The level-synchronous kernels co-schedule
// tasks that share the frontier, the CSR arrays and the hot vertex-vector
// lines, so slicing the L2 per core costs them far more misses than it
// costs a regular divide-and-conquer workload.
//
// Run with:
//
//	go run ./examples/graph_irregularity
package main

import (
	"fmt"
	"log"

	"cmpsched"
)

func main() {
	// The same spec `cmd/sweep -workloads bfs,sssp,pagerank,triangles
	// -topology shared,private -cores 8 -quick` would run: the experiment
	// harness's factory sizes the graphs, and every point is one
	// content-addressed job on the parallel engine.
	opts := cmpsched.ExperimentOptions{Quick: true}
	spec := cmpsched.SweepSpec{
		Workloads:  []string{"bfs", "sssp", "pagerank", "triangles"},
		Schedulers: []string{"pdf", "ws"},
		Topologies: []string{"shared", "private"},
		Cores:      []int{8},
		Quick:      true,
		Factory:    opts.WorkloadFactory(),
	}
	results, err := cmpsched.RunSweep(spec, cmpsched.SweepEngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	type point struct{ cycles, mpki float64 }
	grid := map[string]point{}
	for _, r := range results {
		grid[r.Key.Workload+"/"+r.Sim.Config.Topology.String()+"/"+r.Key.Scheduler] =
			point{float64(r.Sim.Cycles), r.Sim.L2MissesPerKiloInstr()}
	}

	fmt.Println("graph kernels on 8 cores, shared vs private L2 (quick inputs)")
	fmt.Printf("\n%-10s %-8s %14s %14s %22s %22s\n",
		"kernel", "topology", "pdf cycles", "ws cycles", "PDF miss reduction", "private MPKI penalty")
	for _, wl := range []string{"bfs", "sssp", "pagerank", "triangles"} {
		for _, topo := range []string{"shared", "private"} {
			pdf := grid[wl+"/"+topo+"/pdf"]
			ws := grid[wl+"/"+topo+"/ws"]
			reduction := 0.0
			if ws.mpki > 0 {
				reduction = (ws.mpki - pdf.mpki) / ws.mpki * 100
			}
			penalty := ""
			if topo == "private" {
				if shared := grid[wl+"/shared/pdf"]; shared.mpki > 0 {
					penalty = fmt.Sprintf("%.2fx", pdf.mpki/shared.mpki)
				}
			}
			fmt.Printf("%-10s %-8s %14.0f %14.0f %21.1f%% %22s\n",
				wl, topo, pdf.cycles, ws.cycles, reduction, penalty)
		}
	}
	fmt.Println("\nSlicing the L2 per core multiplies the graph kernels' misses:")
	fmt.Println("their tasks share the CSR arrays and hot vertex lines, and only")
	fmt.Println("a shared cache lets the co-scheduled tasks overlap those lines.")
}
