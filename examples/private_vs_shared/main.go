// Private vs shared: rerun the PDF-vs-WS Mergesort comparison with the same
// total L2 capacity organised as one shared cache (the paper's machine),
// clustered slices, and per-core private slices.
//
// The paper's argument is that PDF's advantage is *constructive cache
// sharing*: co-scheduled tasks overlap their working sets in a shared L2.
// With private slices no scheduler can make cores share capacity, so PDF's
// L2-miss advantage over WS collapses — which this example demonstrates on
// the topology API.
//
// Run with:
//
//	go run ./examples/private_vs_shared
package main

import (
	"fmt"
	"log"

	"cmpsched"
)

func main() {
	// A scaled-down Mergesort whose merge working sets exceed one private
	// slice but fit the shared L2, so the topology choice matters.
	ms := cmpsched.NewMergesort(cmpsched.MergesortConfig{
		Elements:            1 << 16,
		TaskWorkingSetBytes: 2 << 10,
	})

	base := cmpsched.DefaultConfig(8).Scaled(cmpsched.DefaultScale * 16)
	topologies := []cmpsched.CacheTopology{
		cmpsched.SharedTopology(),
		cmpsched.ClusteredTopology(4),
		cmpsched.ClusteredTopology(2),
		cmpsched.PrivateTopology(),
	}

	fmt.Printf("mergesort on %d cores, total L2 %.0f KB\n\n", base.Cores, float64(base.L2.SizeBytes)/1024)
	fmt.Printf("%-12s %8s %14s %14s %14s %20s\n",
		"topology", "slices", "pdf cycles", "ws cycles", "pdf/ws", "PDF miss reduction")

	// One DAG serves every run: the simulator resets its reference streams
	// before each simulation (runs just must not overlap in time).
	d, _, err := ms.Build()
	if err != nil {
		log.Fatal(err)
	}

	for _, topo := range topologies {
		cfg := base.WithTopology(topo)
		mpki := map[string]float64{}
		cycles := map[string]int64{}
		for _, s := range []cmpsched.Scheduler{cmpsched.NewPDF(), cmpsched.NewWS()} {
			res, err := cmpsched.Run(d, s, cfg)
			if err != nil {
				log.Fatal(err)
			}
			mpki[s.Name()] = res.L2MissesPerKiloInstr()
			cycles[s.Name()] = res.Cycles
		}
		reduction := 0.0
		if mpki["ws"] > 0 {
			reduction = (mpki["ws"] - mpki["pdf"]) / mpki["ws"] * 100
		}
		fmt.Printf("%-12s %8d %14d %14d %14.2f %19.1f%%\n",
			topo, topo.Slices(cfg.Cores), cycles["pdf"], cycles["ws"],
			float64(cycles["ws"])/float64(cycles["pdf"]), reduction)
	}

	fmt.Println("\nThe PDF-over-WS miss reduction shrinks as the L2 is sliced finer:")
	fmt.Println("constructive sharing needs a shared cache to be constructive in.")
}
