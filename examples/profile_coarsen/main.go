// Working-set profiling and automatic task coarsening (§6 of the paper):
// start from a very fine-grained Mergesort, measure every task group's
// working set with the one-pass LruTree profiler, apply the stop criterion
// W <= K * C/(2P) for a target configuration, and compare the fine-grained,
// automatically coarsened and manually tuned versions.
//
// Run with:
//
//	go run ./examples/profile_coarsen
package main

import (
	"fmt"
	"log"

	"cmpsched"
)

func main() {
	target := cmpsched.DefaultConfig(16).Scaled(cmpsched.DefaultScale)
	fmt.Printf("target: %d cores, %.0f KB shared L2\n\n", target.Cores, float64(target.L2.SizeBytes)/1024)

	// 1. Write the program with very fine-grained tasks (2 KB working sets).
	fine := cmpsched.MergesortConfig{Elements: 1 << 19, TaskWorkingSetBytes: 2 << 10}
	d, tree, err := cmpsched.NewMergesort(fine).Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fine-grained program: %d tasks, %d task groups\n", d.NumTasks(), tree.NumGroups())

	// 2. Profile its sequential trace once with the one-pass profiler.
	prof, err := cmpsched.ProfileWorkingSets(d, cmpsched.ProfileConfig{
		LineBytes:  128,
		CacheSizes: cmpsched.DefaultProfileCacheSizes(),
	})
	if err != nil {
		log.Fatal(err)
	}
	root := prof.GroupOf(tree.Root)
	fmt.Printf("profiled %d references; whole-program working set %.0f KB\n\n",
		prof.TotalRefs(), float64(root.WorkingSetBytes)/1024)

	// 3. Apply the stop criterion for the target configuration.
	sel, err := cmpsched.CoarsenTasks(prof, tree, cmpsched.CoarsenParams{
		CacheSizeBytes: target.L2.SizeBytes,
		Cores:          target.Cores,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarsening: %d task groups become sequential tasks\n", len(sel.Sequential))
	for _, e := range sel.Table {
		fmt.Printf("parallelization table: site %-22s threshold %.0f bytes\n", e.Site, e.Threshold)
	}

	// 4. Compare fine-grained, auto-coarsened and manually tuned versions
	//    under PDF on the target machine.
	coarse, err := cmpsched.CollapseDAG(d, tree, sel)
	if err != nil {
		log.Fatal(err)
	}
	manualCfg := cmpsched.MergesortConfig{Elements: 1 << 19} // default 16 KB tasks
	manual, _, err := cmpsched.NewMergesort(manualCfg).Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %14s\n", "version", "tasks", "pdf cycles")
	for _, v := range []struct {
		name string
		dag  *cmpsched.DAG
	}{
		{"fine-grained", d},
		{"auto-coarsened (dag)", coarse},
		{"manually tuned", manual},
	} {
		res, err := cmpsched.Run(v.dag, cmpsched.NewPDF(), target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12d %14d\n", v.name, v.dag.NumTasks(), res.Cycles)
	}
	fmt.Println("\nThe recommended threshold matches the hand-tuned grain size without any")
	fmt.Println("manual tuning; regenerating the program at that threshold (Figure 8's")
	fmt.Println("'actual' bars) recovers the manually tuned performance, while the pure")
	fmt.Println("DAG substitution above still pays the fine-grained parallel overheads.")
}
