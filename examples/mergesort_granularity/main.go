// Mergesort granularity study (the shape of Figure 6): sweep the task
// working-set size of parallel Mergesort on the 16-core default
// configuration and watch PDF's cache performance improve with finer tasks
// while Work Stealing stays flat.
//
// Run with:
//
//	go run ./examples/mergesort_granularity
package main

import (
	"fmt"
	"log"

	"cmpsched"
)

func main() {
	cfg := cmpsched.DefaultConfig(16).Scaled(cmpsched.DefaultScale)
	fmt.Printf("16-core default configuration, %.0f KB shared L2\n\n", float64(cfg.L2.SizeBytes)/1024)
	fmt.Printf("%-14s %16s %16s %14s %14s %8s\n",
		"task WS (KB)", "pdf misses/Ki", "ws misses/Ki", "pdf cycles", "ws cycles", "ws/pdf")

	// From coarse tasks (256 KB working sets) down to fine tasks (4 KB).
	for taskWS := int64(256 << 10); taskWS >= 4<<10; taskWS /= 2 {
		msCfg := cmpsched.MergesortConfig{
			Elements:            1 << 19, // 2 MB of keys keeps the sweep quick
			TaskWorkingSetBytes: taskWS,
		}
		var cycles [2]int64
		var misses [2]float64
		for i, mk := range []func() cmpsched.Scheduler{cmpsched.NewPDF, cmpsched.NewWS} {
			d, _, err := cmpsched.NewMergesort(msCfg).Build()
			if err != nil {
				log.Fatal(err)
			}
			res, err := cmpsched.Run(d, mk(), cfg)
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = res.Cycles
			misses[i] = res.L2MissesPerKiloInstr()
		}
		fmt.Printf("%-14d %16.3f %16.3f %14d %14d %8.2f\n",
			taskWS/1024, misses[0], misses[1], cycles[0], cycles[1],
			float64(cycles[1])/float64(cycles[0]))
	}
	fmt.Println("\nFiner tasks let PDF co-schedule work on overlapping data, widening its")
	fmt.Println("advantage; too-fine tasks eventually pay spawn overhead (see Figure 6).")
}
